// Package radixdecluster is a from-scratch Go reproduction of
// "Cache-Conscious Radix-Decluster Projections" (Manegold, Boncz,
// Nes, Kersten; CWI / VLDB 2004): cache-conscious equi-joins
// *including the projection columns*, on both decomposed (DSM) and
// row-wise (NSM) storage.
//
// The paper's headline result — reproduced by this library — is that
// for large joins the best strategy is DSM post-projection: first
// compute a join-index of matching [oid,oid] pairs with a Partitioned
// Hash-Join over radix-clustered inputs, then fetch the larger
// relation's projection columns through a partially Radix-Clustered
// join-index (cache-sized access regions), and fetch the smaller
// relation's columns in clustered order followed by Radix-Decluster —
// a single-pass, insertion-window-bounded merge-scatter that restores
// result order while keeping all random access inside the CPU cache.
//
// Entry points:
//
//   - ProjectJoin runs the paper's project-join query end to end with
//     a chosen (or planner-selected) strategy.
//   - Decluster, ClusterOIDs, SortOIDs and Fetch expose the core
//     column operators.
//   - DeclusterStrings runs the Section-5 variable-size variant into
//     slotted buffer pages.
//   - Pentium4 and Calibrate manage the memory-hierarchy description
//     that drives all planning.
//
// # Parallel execution
//
// By default every algorithm runs single-threaded, matching the
// paper. Setting JoinQuery.Parallelism switches the DSM
// post-projection strategy — the paper's winner — to a morsel-driven
// parallel executor (internal/exec): a fixed worker
// pool pulls radix partitions and cache-sized cluster regions from a
// shared queue, exploiting that the paper's decomposition makes them
// independent units of work — each partition of the Partitioned
// Hash-Join and each fetch/decluster region of the post-projection
// confines its random access to a private cache-sized slice. The
// parallel operators reproduce the serial arrangement exactly, so a
// parallel run returns results byte-identical to the serial one; each
// worker's Radix-Decluster insertion window is the cache budget
// divided by the worker count, keeping the concurrently live windows
// inside the last-level cache.
//
// The planner chooses between serial and parallel plans when
// Parallelism is AutoParallelism: the cost model extends Appendix A
// with a per-core cache-capacity term
// (costmodel.DSMPostDeclusterParallel) — adding workers divides the
// work but also each worker's cache share, and the modeled optimum
// (capped at runtime.GOMAXPROCS) wins. PlanJoin reports that
// recommendation as Plan.Parallelism without executing anything.
//
// Values are 4-byte integers and oids are dense uint32 record
// numbers, the paper's data model.
package radixdecluster

import (
	"fmt"
	"sync"

	"radixdecluster/internal/bat"
	"radixdecluster/internal/calibrator"
	"radixdecluster/internal/compress"
	"radixdecluster/internal/mem"
	"radixdecluster/internal/nsm"
)

// OID is a dense object identifier: record number in [0,N).
type OID = uint32

// CacheLevel describes one level of the memory hierarchy.
type CacheLevel struct {
	Name string
	// SizeBytes is the capacity (for a TLB: entries × page size).
	SizeBytes int
	// LineBytes is the transfer unit (for a TLB: the page size).
	LineBytes int
	// Assoc is the set-associativity (0 = fully associative).
	Assoc int
	// MissNanos is the random-miss latency; SeqNanos the effective
	// per-line cost under sequential (prefetched) access.
	MissNanos, SeqNanos float64
	// TLB marks address-translation levels.
	TLB bool
}

// Hierarchy is an ordered memory-hierarchy description, innermost
// level first. The zero value means "use Pentium4()".
type Hierarchy struct {
	Levels []CacheLevel
}

// Pentium4 returns the paper's evaluation platform (§4): 16KB L1,
// 512KB L2, 64-entry TLB, 2.2GHz.
func Pentium4() Hierarchy {
	return fromInternal(mem.Pentium4())
}

// Calibrate recovers the hierarchy parameters by running the
// Calibrator's footprint/stride sweeps against a simulation of spec,
// returning the recovered hierarchy — the §1.1 bootstrap path for
// machines without documented cache parameters.
func Calibrate(spec Hierarchy) (Hierarchy, error) {
	res, err := calibrator.Calibrate(spec.internal())
	if err != nil {
		return Hierarchy{}, err
	}
	page := 4096
	if tlb, ok := spec.internal().TLB(); ok {
		page = tlb.LineSize
	}
	return fromInternal(res.Hierarchy(page)), nil
}

func fromInternal(h mem.Hierarchy) Hierarchy {
	out := Hierarchy{}
	for _, l := range h.Levels {
		out.Levels = append(out.Levels, CacheLevel{
			Name: l.Name, SizeBytes: l.Size, LineBytes: l.LineSize, Assoc: l.Assoc,
			MissNanos: l.MissLatency, SeqNanos: l.SeqLatency, TLB: l.IsTLB,
		})
	}
	return out
}

func (h Hierarchy) internal() mem.Hierarchy {
	if len(h.Levels) == 0 {
		return mem.Pentium4()
	}
	out := mem.Hierarchy{ClockGHz: 1}
	for _, l := range h.Levels {
		out.Levels = append(out.Levels, mem.Level{
			Name: l.Name, Size: l.SizeBytes, LineSize: l.LineBytes, Assoc: l.Assoc,
			MissLatency: l.MissNanos, SeqLatency: l.SeqNanos, IsTLB: l.TLB,
		})
	}
	return out
}

// Validate reports structural problems with the hierarchy.
func (h Hierarchy) Validate() error { return h.internal().Validate() }

// Column is a named column of 4-byte integer values — the tail of a
// MonetDB [void,value] BAT.
type Column struct {
	Name   string
	Values []int32
}

// Relation is a DSM relation: equally long named columns.
type Relation struct {
	Name string
	tab  *bat.Table

	// nsmOnce caches the row-major image NSM strategies scan, so every
	// query over this relation — concurrent ones included — reads the
	// same record array. That makes the image a stable scan source:
	// with RuntimeConfig.ShareScans, concurrent NSM queries over one
	// relation are served by a single cooperative pass.
	nsmOnce sync.Once
	nsmRel  *nsm.Relation
	nsmErr  error

	// compressed marks relations built with WithCompression: queries
	// running with JoinQuery.Compression enabled may execute over
	// block-compressed column images, built lazily on first use and
	// shared by all queries (like the NSM image). The raw column slices
	// always coexist — compression is an execution-format option, never
	// a storage replacement — so results are byte-identical either way.
	compressed bool
	encOnce    sync.Once
	colEnc     map[string]*compress.Encoded
	encErr     error
	recOnce    sync.Once
	recEnc     *compress.Encoded
	recErr     error
}

// RelationOption configures NewRelationOpts.
type RelationOption func(*Relation)

// WithCompression builds block-compressed images of the relation's
// columns (and, for NSM strategies, its record image) lazily on first
// compressed query. Columns the encoder cannot shrink simply stay
// raw-only. Queries opt in per run via JoinQuery.Compression.
func WithCompression() RelationOption {
	return func(r *Relation) { r.compressed = true }
}

// NewRelation builds a relation from columns (not copied). The column
// slices must not be mutated once the relation has been queried:
// queries read the live slices (DSM strategies) and a row-major image
// cached on first NSM-strategy use (nsmImage), so post-query mutation
// would make the two storage views disagree.
func NewRelation(name string, cols ...Column) (*Relation, error) {
	bcols := make([]*bat.Column, len(cols))
	for i, c := range cols {
		bcols[i] = bat.NewColumn(c.Name, c.Values)
	}
	t, err := bat.NewTable(name, bcols...)
	if err != nil {
		return nil, err
	}
	return &Relation{Name: name, tab: t}, nil
}

// NewRelationOpts is NewRelation with options (the column slices are
// not copied; see NewRelation's no-mutation-after-query contract).
func NewRelationOpts(name string, cols []Column, opts ...RelationOption) (*Relation, error) {
	r, err := NewRelation(name, cols...)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Compressed reports whether the relation was built with
// WithCompression.
func (r *Relation) Compressed() bool { return r.compressed }

// Len returns the cardinality.
func (r *Relation) Len() int { return r.tab.Len() }

// Width returns the number of columns (the paper's ω).
func (r *Relation) Width() int { return r.tab.Width() }

// Column returns the named column's values (a view, not a copy; see
// NewRelation for the no-mutation-after-query contract).
func (r *Relation) Column(name string) ([]int32, error) {
	c, err := r.tab.Column(name)
	if err != nil {
		return nil, err
	}
	return c.Values, nil
}

// ColumnNames lists the column names in declaration order.
func (r *Relation) ColumnNames() []string {
	out := make([]string, r.tab.Width())
	for i := range out {
		out[i] = r.tab.ColumnAt(i).Name
	}
	return out
}

// nsmImage returns the relation's row-major (NSM) image — every
// column, declaration order — built once and shared by all queries.
func (r *Relation) nsmImage() (*nsm.Relation, error) {
	r.nsmOnce.Do(func() {
		names := r.ColumnNames()
		cols := make([][]int32, len(names))
		for i, n := range names {
			c, err := r.Column(n)
			if err != nil {
				r.nsmErr = err
				return
			}
			cols[i] = c
		}
		r.nsmRel, r.nsmErr = nsm.FromColumns(r.Name, cols...)
	})
	return r.nsmRel, r.nsmErr
}

// encodings returns the relation's per-column block-compressed images
// (nil for relations built without WithCompression), building them on
// first use. Incompressible or empty columns have no entry.
func (r *Relation) encodings() (map[string]*compress.Encoded, error) {
	if !r.compressed {
		return nil, nil
	}
	r.encOnce.Do(func() {
		r.colEnc = make(map[string]*compress.Encoded, r.Width())
		for _, n := range r.ColumnNames() {
			vals, err := r.Column(n)
			if err != nil {
				r.encErr = err
				return
			}
			if len(vals) == 0 {
				continue
			}
			e, err := compress.EncodeBest(vals)
			if err != nil {
				r.encErr = err
				return
			}
			if e.Ratio() < 1 {
				r.colEnc[n] = e
			}
		}
	})
	return r.colEnc, r.encErr
}

// recordEncoding returns the block-compressed image of the relation's
// row-major record array (nil when absent or incompressible), built on
// first NSM-strategy compressed use.
func (r *Relation) recordEncoding() (*compress.Encoded, error) {
	if !r.compressed {
		return nil, nil
	}
	r.recOnce.Do(func() {
		rel, err := r.nsmImage()
		if err != nil {
			r.recErr = err
			return
		}
		if len(rel.Data) == 0 {
			return
		}
		e, err := compress.EncodeBest(rel.Data)
		if err != nil {
			r.recErr = err
			return
		}
		if e.Ratio() < 1 {
			r.recEnc = e
		}
	})
	return r.recEnc, r.recErr
}

func (r *Relation) columns(names []string) ([][]int32, error) {
	out := make([][]int32, len(names))
	for i, n := range names {
		c, err := r.Column(n)
		if err != nil {
			return nil, fmt.Errorf("relation %q: %w", r.Name, err)
		}
		out[i] = c
	}
	return out, nil
}
