package radixdecluster

import (
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"radixdecluster/internal/core"
	"radixdecluster/internal/experiments"
	"radixdecluster/internal/join"
	"radixdecluster/internal/mem"
	"radixdecluster/internal/posjoin"
	"radixdecluster/internal/radix"
)

// ---------------------------------------------------------------------------
// One benchmark per paper figure: each iteration regenerates the
// figure's full data series at Quick scale. Use cmd/radixbench for
// the paper-scale tables.
// ---------------------------------------------------------------------------

func benchFigure(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aDeclusterWindow(b *testing.B)  { benchFigure(b, "fig7a") }
func BenchmarkFig7bComponents(b *testing.B)       { benchFigure(b, "fig7b") }
func BenchmarkFig8DSMPostStrategies(b *testing.B) { benchFigure(b, "fig8") }
func BenchmarkFig9aRadixCluster(b *testing.B)     { benchFigure(b, "fig9a") }
func BenchmarkFig9bPartHashJoin(b *testing.B)     { benchFigure(b, "fig9b") }
func BenchmarkFig9cClustPosJoin(b *testing.B)     { benchFigure(b, "fig9c") }
func BenchmarkFig9dDecluster(b *testing.B)        { benchFigure(b, "fig9d") }
func BenchmarkFig9eLeftJive(b *testing.B)         { benchFigure(b, "fig9e") }
func BenchmarkFig9fRightJive(b *testing.B)        { benchFigure(b, "fig9f") }
func BenchmarkFig10aProjectivity(b *testing.B)    { benchFigure(b, "fig10a") }
func BenchmarkFig10bHitRate(b *testing.B)         { benchFigure(b, "fig10b") }
func BenchmarkFig10cCardinality(b *testing.B)     { benchFigure(b, "fig10c") }
func BenchmarkFig11Sparse(b *testing.B)           { benchFigure(b, "fig11") }
func BenchmarkFig12VarsizePages(b *testing.B)     { benchFigure(b, "fig12") }
func BenchmarkCalibrate(b *testing.B)             { benchFigure(b, "calib") }

// ---------------------------------------------------------------------------
// Operator-level benchmarks (per-tuple costs, -benchmem).
// ---------------------------------------------------------------------------

// benchN sizes the operator benchmarks so that columns exceed any
// contemporary LLC (the paper's "hard join" regime): 4M tuples =
// 16MB per column.
const benchN = 4 << 20

func benchDeclusterInput(b *testing.B, bits int) (*core.Clustered, []int32) {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	smaller := make([]OID, benchN)
	for i := range smaller {
		smaller[i] = OID(rng.IntN(benchN))
	}
	cl, err := core.ClusterForDecluster(smaller,
		radix.Opts{Bits: bits, Ignore: radix.IgnoreBits(benchN, bits)})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]int32, benchN)
	for i, o := range cl.SmallerOIDs {
		vals[i] = int32(o)
	}
	return cl, vals
}

// BenchmarkDecluster measures the core algorithm with the planned
// (cache-half) window — the paper's recommended configuration.
func BenchmarkDecluster(b *testing.B) {
	cl, vals := benchDeclusterInput(b, 8)
	window := core.PlanWindow(mem.Pentium4(), 4)
	b.SetBytes(benchN * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decluster(vals, cl.ResultPos, cl.Borders, window); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: pure scatter (infinite window) — O(N) CPU, unbounded
// random writes.
func BenchmarkDeclusterAblationScatter(b *testing.B) {
	cl, vals := benchDeclusterInput(b, 8)
	b.SetBytes(benchN * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ScatterDecluster(vals, cl.ResultPos); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: pure H-way heap merge — cache-friendly but O(N·log H) CPU.
func BenchmarkDeclusterAblationMerge(b *testing.B) {
	cl, vals := benchDeclusterInput(b, 8)
	b.SetBytes(benchN * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MergeDecluster(vals, cl.ResultPos, cl.Borders); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPairs(b *testing.B) ([]OID, []int32) {
	b.Helper()
	rng := rand.New(rand.NewPCG(2, 2))
	heads := make([]OID, benchN)
	keys := make([]int32, benchN)
	for i := range heads {
		heads[i] = OID(i)
		keys[i] = int32(rng.Uint32() >> 1)
	}
	return heads, keys
}

func BenchmarkRadixClusterSinglePass(b *testing.B) {
	heads, keys := benchPairs(b)
	b.SetBytes(benchN * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := radix.ClusterPairs(heads, keys, true, radix.Opts{Bits: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadixClusterTwoPass(b *testing.B) {
	heads, keys := benchPairs(b)
	b.SetBytes(benchN * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := radix.ClusterPairs(heads, keys, true, radix.Opts{Bits: 12, Passes: []int{6, 6}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinNaive(b *testing.B) {
	lo, lk := benchPairs(b)
	so := make([]OID, benchN)
	sk := make([]int32, benchN)
	copy(so, lo)
	copy(sk, lk)
	b.SetBytes(benchN * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.HashJoin(lo, lk, so, sk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinPartitioned(b *testing.B) {
	lo, lk := benchPairs(b)
	so := make([]OID, benchN)
	sk := make([]int32, benchN)
	copy(so, lo)
	copy(sk, lk)
	bits := join.PlanBits(benchN, 4, mem.Pentium4().LLC().Size)
	b.SetBytes(benchN * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.Partitioned(lo, lk, so, sk, radix.Opts{Bits: bits}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPosJoinOIDs(b *testing.B) ([]OID, []int32) {
	b.Helper()
	rng := rand.New(rand.NewPCG(3, 3))
	oids := make([]OID, benchN)
	for i := range oids {
		oids[i] = OID(rng.IntN(benchN))
	}
	col := make([]int32, benchN)
	for i := range col {
		col[i] = int32(i)
	}
	return oids, col
}

func BenchmarkPosJoinUnsorted(b *testing.B) {
	oids, col := benchPosJoinOIDs(b)
	b.SetBytes(benchN * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := posjoin.Unsorted(col, oids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPosJoinClustered(b *testing.B) {
	oids, col := benchPosJoinOIDs(b)
	h := mem.Pentium4()
	bits := radix.OptimalBits(benchN, 4, h.LLC().Size)
	pos := make([]OID, benchN)
	for i := range pos {
		pos[i] = OID(i)
	}
	cl, err := radix.ClusterOIDPairs(oids, pos,
		radix.Opts{Bits: bits, Ignore: radix.IgnoreBits(benchN, bits)})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchN * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := posjoin.Clustered(col, cl.Key, cl.Borders()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJoinQuery builds an n-tuple key/FK pair with one payload
// column per side for the end-to-end ProjectJoin benchmarks and the
// speedup test.
func benchJoinQuery(tb testing.TB, n int) JoinQuery {
	return benchJoinQueryOpts(tb, n)
}

func benchJoinQueryOpts(tb testing.TB, n int, opts ...RelationOption) JoinQuery {
	tb.Helper()
	rng := rand.New(rand.NewPCG(4, 4))
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	payload := make([]int32, n)
	for i := range payload {
		payload[i] = int32(i)
	}
	mk := func(name string) *Relation {
		k := make([]int32, n)
		copy(k, keys)
		r, err := NewRelationOpts(name,
			[]Column{{Name: "key", Values: k}, {Name: "a", Values: payload}}, opts...)
		if err != nil {
			tb.Fatal(err)
		}
		return r
	}
	larger, smaller := mk("l"), mk("s")
	return JoinQuery{
		Larger: larger, Smaller: smaller,
		LargerKey: "key", SmallerKey: "key",
		LargerProject: []string{"a"}, SmallerProject: []string{"a"},
		Strategy: DSMPostDecluster,
	}
}

// BenchmarkProjectJoinParallel sweeps the morsel-driven executor's
// worker count on a 1M-tuple join (workers=0 is the serial paper-mode
// baseline), so the perf trajectory captures parallel speedup. Each
// sub-benchmark reports gomaxprocs/cpus so result archives carry the
// machine shape: on a single-core box the sweep degenerates to
// overhead measurement and multi-worker numbers must not be read as
// speedup (see TestParallelSpeedupMultiCore).
func BenchmarkProjectJoinParallel(b *testing.B) {
	const n = 1 << 20
	q := benchJoinQuery(b, n)
	for _, w := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			q.Parallelism = w
			b.SetBytes(n * 8)
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "cpus")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ProjectJoin(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParallelSpeedupMultiCore is the multi-worker speedup check that
// PR 1's benchmark note asked to gate on core count: it compares the
// serial paper mode against the 4-worker executor on a 1M-tuple join.
// On a single-core machine the comparison only measures scheduling
// overhead, so the threshold is skipped — but the ratio is measured
// and logged FIRST, so single-core CI runs still leave a trajectory
// data point instead of skipping silently.
func TestParallelSpeedupMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement needs a full-size join")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts serial-vs-parallel timing")
	}
	cores := min(runtime.NumCPU(), runtime.GOMAXPROCS(0))
	const n = 1 << 20
	q := benchJoinQuery(t, n)
	measure := func(workers int) time.Duration {
		q.Parallelism = workers
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := ProjectJoin(q); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(0)
	parallel := measure(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("cpus=%d gomaxprocs=%d serial=%v parallel(4)=%v speedup=%.2fx",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), serial, parallel, speedup)
	if cores <= 1 {
		t.Skipf("single-core box (NumCPU=%d GOMAXPROCS=%d): measured ratio logged above, threshold skipped",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	// Wall-clock assertions are opt-in (RADIX_ASSERT_SPEEDUP=1): even
	// on a quiet >= 4-core box, `go test ./...` runs package binaries
	// concurrently, so an unconditional threshold would flake. The
	// measurement itself is always logged above.
	if os.Getenv("RADIX_ASSERT_SPEEDUP") == "" || cores < 4 {
		return
	}
	if speedup < 1.2 {
		t.Errorf("4-worker speedup %.2fx below 1.2x on a %d-core machine", speedup, cores)
	}
}

// BenchmarkConcurrentProjectJoin is the shared-runtime trajectory
// benchmark: 4 concurrent same-source NSM queries per iteration, with
// cooperative scan sharing off and on. The share=true/share=false pair
// is the "sharing costs nothing and may reclaim bandwidth" acceptance
// measurement; both report gomaxprocs/cpus so archived numbers carry
// the machine shape.
func BenchmarkConcurrentProjectJoin(b *testing.B) {
	const n = 256 << 10
	const queries = 4
	for _, share := range []bool{false, true} {
		b.Run(fmt.Sprintf("share=%v", share), func(b *testing.B) {
			q := benchJoinQuery(b, n)
			q.Strategy = NSMPostDecluster
			q.Parallelism = 2
			rt := NewRuntime(RuntimeConfig{MaxConcurrentQueries: queries, ShareScans: share})
			defer rt.Close()
			q.Runtime = rt
			// Build the cached NSM images outside the timer.
			if _, err := ProjectJoin(q); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(queries) * n * 8)
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "cpus")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < queries; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := ProjectJoin(q); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
		})
	}
	// compress=false/compress=true is the compressed-execution
	// acceptance pair: the same 4-query concurrent load with
	// CompressionAuto over block-compressed relations must be no worse
	// than the raw leg. New legs only — the share= names above are the
	// archived trajectory baseline and keep their identity.
	for _, comp := range []bool{false, true} {
		b.Run(fmt.Sprintf("compress=%v", comp), func(b *testing.B) {
			var opts []RelationOption
			if comp {
				opts = append(opts, WithCompression())
			}
			q := benchJoinQueryOpts(b, n, opts...)
			q.Strategy = NSMPostDecluster
			q.Parallelism = 2
			if comp {
				q.Compression = CompressionAuto
			}
			rt := NewRuntime(RuntimeConfig{MaxConcurrentQueries: queries})
			defer rt.Close()
			q.Runtime = rt
			// Build the cached NSM and compressed images outside the timer.
			if _, err := ProjectJoin(q); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(queries) * n * 8)
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "cpus")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < queries; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := ProjectJoin(q); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
		})
	}
}

// End-to-end public API benchmark: the paper's query through the
// winning strategy.
func BenchmarkProjectJoinDSMPost(b *testing.B) {
	const n = 64 << 10
	rng := rand.New(rand.NewPCG(4, 4))
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	payload := make([]int32, n)
	for i := range payload {
		payload[i] = int32(i)
	}
	mk := func(name string) *Relation {
		k := make([]int32, n)
		copy(k, keys)
		r, err := NewRelation(name, Column{Name: "key", Values: k}, Column{Name: "a", Values: payload})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	larger, smaller := mk("l"), mk("s")
	q := JoinQuery{
		Larger: larger, Smaller: smaller,
		LargerKey: "key", SmallerKey: "key",
		LargerProject: []string{"a"}, SmallerProject: []string{"a"},
		Strategy: DSMPostDecluster,
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProjectJoin(q); err != nil {
			b.Fatal(err)
		}
	}
}
