package radixdecluster_test

import (
	"fmt"
	"log"

	rd "radixdecluster"
)

// seqRelation builds a relation whose columns are small arithmetic
// sequences — exactly the shape Delta+FOR block compression shrinks
// to a few percent.
func seqRelation(name string, n int) *rd.Relation {
	keys := make([]int32, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = int32(i)
		vals[i] = int32(i * 3)
	}
	rel, err := rd.NewRelationOpts(name,
		[]rd.Column{{Name: "key", Values: keys}, {Name: "val", Values: vals}},
		rd.WithCompression(),
	)
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

// ExampleNewRelationOpts opts a relation into block compression and
// forces a query to execute over the encoded bytes. Encodings are
// built lazily on the first compressed query; result bytes are
// identical to a raw run — only Result.Compressed tells them apart.
func ExampleNewRelationOpts() {
	orders := seqRelation("orders", 4096)
	customers := seqRelation("customers", 4096)
	res, err := rd.ProjectJoin(rd.JoinQuery{
		Larger: orders, Smaller: customers,
		LargerKey: "key", SmallerKey: "key",
		LargerProject:  []string{"val"},
		SmallerProject: []string{"val"},
		Compression:    rd.CompressionOn,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", res.N)
	fmt.Println("executed compressed:", res.Compressed)
	// Output:
	// rows: 4096
	// executed compressed: true
}

// ExampleNewRuntime runs a traced query on an explicit shared
// runtime. Every parallel ProjectJoin in a process multiplexes over
// one runtime's worker pool under admission control; JoinQuery.Trace
// records the execution as span events for Perfetto.
func ExampleNewRuntime() {
	rt := rd.NewRuntime(rd.RuntimeConfig{Workers: 2, MaxConcurrentQueries: 2})
	defer rt.Close()

	orders := seqRelation("orders", 4096)
	customers := seqRelation("customers", 4096)
	res, err := rd.ProjectJoin(rd.JoinQuery{
		Larger: orders, Smaller: customers,
		LargerKey: "key", SmallerKey: "key",
		LargerProject:  []string{"val"},
		SmallerProject: []string{"val"},
		Runtime:        rt,
		Parallelism:    rd.AutoParallelism, // planner: serial for a query this small
		Trace:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", res.N)
	// res.Trace.WriteJSON(f) exports the spans as Chrome trace-event
	// JSON for ui.perfetto.dev.
	fmt.Println("trace recorded:", res.Trace != nil && res.Trace.Spans() > 0)
	// Output:
	// rows: 4096
	// trace recorded: true
}

// ExampleTiming reads the per-phase breakdown of a completed query.
// Phase times vary run to run; the invariants shown here do not: a
// serial run never waits on a runtime queue, and every executed phase
// is contained in Total.
func ExampleTiming() {
	orders := seqRelation("orders", 1024)
	customers := seqRelation("customers", 1024)
	res, err := rd.ProjectJoin(rd.JoinQuery{
		Larger: orders, Smaller: customers,
		LargerKey: "key", SmallerKey: "key",
		LargerProject:  []string{"val"},
		SmallerProject: []string{"val"},
	})
	if err != nil {
		log.Fatal(err)
	}
	t := res.Timing
	fmt.Println("ran:", t.Total > 0)
	fmt.Println("join within total:", t.Join <= t.Total)
	fmt.Println("serial queue wait:", t.Queue)
	fmt.Println("shared-scan hits:", t.SharedScanHits)
	// Output:
	// ran: true
	// join within total: true
	// serial queue wait: 0s
	// shared-scan hits: 0
}
