package radixdecluster

import (
	"fmt"
	"time"

	"radixdecluster/internal/compress"
	"radixdecluster/internal/core"
	"radixdecluster/internal/costmodel"
	"radixdecluster/internal/join"
	"radixdecluster/internal/obs"
	"radixdecluster/internal/radix"
	"radixdecluster/internal/strategy"
)

// Strategy selects the end-to-end execution plan for ProjectJoin
// (Figure 10's legend).
type Strategy int

const (
	// AutoStrategy lets the planner choose (it picks DSM
	// post-projection, the paper's overall winner, with per-side
	// projection methods resolved by the Figure-10c rules).
	AutoStrategy Strategy = iota
	// DSMPostDecluster: join-index first, then column projections with
	// partial Radix-Cluster / Radix-Decluster — the paper's
	// contribution.
	DSMPostDecluster
	// DSMPre: projection columns travel through a partitioned
	// hash-join as wide tuples stitched from DSM columns.
	DSMPre
	// NSMPreHash: the conventional RDBMS plan — record scans feed a
	// naive hash join (Figure 10's "NSM-pre-hash" baseline).
	NSMPreHash
	// NSMPrePhash: record scans feed a cache-conscious partitioned
	// hash-join ("NSM-pre-phash").
	NSMPrePhash
	// NSMPostDecluster: post-projection over row storage using the
	// Radix algorithms.
	NSMPostDecluster
	// NSMPostJive: post-projection with Jive-Join [LR99].
	NSMPostJive
)

// String returns the strategy's canonical name. Every constant has a
// distinct name (round-trippable through ParseStrategy):
//
//	auto, DSM-post-decluster, DSM-pre, NSM-pre-hash, NSM-pre-phash,
//	NSM-post-decluster, NSM-post-jive
//
// DSMPre is deliberately named "DSM-pre" rather than Figure 10's
// legend label "DSM-pre-phash": the DSM pre-projection always joins
// partitioned, so the suffix adds nothing — and it collided with
// NSMPrePhash's "-phash" suffix style, making the two easy to confuse
// in logs and impossible to parse back unambiguously by suffix.
func (s Strategy) String() string {
	switch s {
	case AutoStrategy:
		return "auto"
	case DSMPostDecluster:
		return "DSM-post-decluster"
	case DSMPre:
		return "DSM-pre"
	case NSMPreHash:
		return "NSM-pre-hash"
	case NSMPrePhash:
		return "NSM-pre-phash"
	case NSMPostDecluster:
		return "NSM-post-decluster"
	case NSMPostJive:
		return "NSM-post-jive"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ProjMethod selects a per-side projection method for the DSM
// post-projection strategy (§4.1's one-letter codes).
type ProjMethod byte

const (
	// AutoMethod lets the planner decide.
	AutoMethod ProjMethod = 0
	// UnsortedMethod ("u"): Positional-Joins straight off the join-index.
	UnsortedMethod ProjMethod = 'u'
	// SortedMethod ("s"): Radix-Sort the join-index first (larger side).
	SortedMethod ProjMethod = 's'
	// ClusterMethod ("c"): partial Radix-Cluster (larger side).
	ClusterMethod ProjMethod = 'c'
	// DeclusterMethod ("d"): clustered fetch + Radix-Decluster
	// (smaller side).
	DeclusterMethod ProjMethod = 'd'
)

// Compression selects whether ProjectJoin executes over the
// relations' block-compressed column images (built by relations
// constructed with WithCompression; relations without them always run
// raw). Result bytes are identical in every mode — compression only
// changes what the memory bus carries.
type Compression int

const (
	// CompressionOff executes over the raw arrays (default).
	CompressionOff Compression = iota
	// CompressionAuto lets the cost model decide per strategy: modeled
	// sequential bus traffic shrinks by the measured compression ratio
	// while CPU grows by the calibrated per-value decode cost, and the
	// cheaper representation wins.
	CompressionAuto
	// CompressionOn forces compressed execution wherever an encoding
	// exists.
	CompressionOn
)

// String returns "off", "auto" or "on".
func (c Compression) String() string { return strategy.CompressMode(c).String() }

// JoinQuery is the paper's §1.1 query:
//
//	SELECT larger.a1..aY, smaller.b1..bZ
//	FROM larger, smaller WHERE larger.key = smaller.key
type JoinQuery struct {
	Larger, Smaller *Relation
	// LargerKey / SmallerKey name the join-key columns.
	LargerKey, SmallerKey string
	// LargerProject / SmallerProject name the projection columns
	// (a1..aY and b1..bZ).
	LargerProject, SmallerProject []string
	// Strategy picks the plan; per-side methods refine DSM
	// post-projection.
	Strategy                    Strategy
	LargerMethod, SmallerMethod ProjMethod
	// Parallelism selects the execution engine: 0 (the default) is
	// the paper's serial single-threaded mode; n >= 1 runs the chosen
	// strategy with nominal parallelism n on the shared runtime's
	// morsel-driven executor; AutoParallelism asks the runtime
	// planner, which picks a worker count per strategy from the cost
	// model — weighing the per-core cache share, the memory-bandwidth
	// ceiling, and the runtime's active-query count (each of Q
	// concurrent queries plans against a 1/Q cache and bus share) —
	// capped by runtime.GOMAXPROCS and the shared pool size. Every
	// strategy — DSM post- and pre-projection and all NSM plans —
	// executes as a phase pipeline, and parallel runs return results
	// byte-identical to serial runs regardless of how many queries
	// share the runtime.
	Parallelism int
	// Runtime selects the shared execution runtime for parallel runs:
	// nil uses the lazily-initialized process default
	// (DefaultRuntime), so concurrent queries in one process
	// automatically share a single worker pool under admission
	// control. Serial runs (Parallelism 0) never involve a runtime.
	Runtime *Runtime
	// Compression selects the execution format when the relations carry
	// block-compressed images (WithCompression): off (the default) runs
	// raw, auto lets the cost model pick the cheaper representation per
	// strategy, on forces compressed execution. Never changes result
	// bytes.
	Compression Compression
	// Trace records this query's execution as span events — per-phase
	// spans with queue waits and morsel counts, per-morsel worker
	// spans with steal distances, admission waits, shared-scan hits —
	// returned in Result.Trace for export as Chrome trace-event JSON
	// (Perfetto). Tracing never changes the result bytes; off (the
	// default) it costs nothing.
	Trace bool
	// Hier drives all planning (zero value: the paper's Pentium 4).
	Hier Hierarchy
}

// AutoParallelism (as JoinQuery.Parallelism) asks the planner to
// choose between the serial paper mode and the parallel executor
// using the cost model's per-core cache-capacity tradeoff.
const AutoParallelism = strategy.AutoParallelism

// Timing is the per-phase wall-clock breakdown of a run. Queue is the
// time spent waiting on the shared runtime rather than executing: the
// admission-control wait plus every phase's morsel-queue waits. The
// morsel-queue component is contained in the phase times; the
// admission component precedes the first phase and is contained only
// in Total. Queue is zero for serial runs.
type Timing struct {
	Scan           time.Duration
	Join           time.Duration
	ReorderJI      time.Duration
	ProjectLarger  time.Duration
	ProjectSmaller time.Duration
	Decluster      time.Duration
	Queue          time.Duration
	Total          time.Duration
	// SharedScanHits counts this query's scans that were served by a
	// cooperative pass another concurrent query had already started
	// (zero unless the runtime has RuntimeConfig.ShareScans on).
	SharedScanHits int64
	// Sched is the runtime scheduler's counter set for this query:
	// morsels executed on their home worker (whose private caches held
	// their partition from earlier phases) versus steals by topology
	// distance. Zero for serial runs and per-query pools.
	Sched SchedStats
	// CompressedCols counts the compressed column inputs the run's
	// operators consumed; CompressedBytes the encoded bytes they read;
	// CompressedSavedBytes the raw bytes that traffic replaced
	// (accumulated per decode pass — bus traffic avoided, not storage);
	// DecodeTime the wall time spent inside block-decode loops. All
	// zero unless the run executed compressed (JoinQuery.Compression).
	CompressedCols       int64
	CompressedBytes      int64
	CompressedSavedBytes int64
	DecodeTime           time.Duration
	// Mem is the query's transient-buffer accounting from the
	// execution arena (see RuntimeConfig.MemPoolOff / MemoryBudget):
	// how many bytes of scratch the run leased, how many of those were
	// recycled buffers rather than fresh allocations, and the peak
	// bytes held at once. Output columns are never leased — they are
	// ordinary garbage-collected slices owned by the caller. All zero
	// for serial runs and pool-off runtimes.
	Mem MemStats
}

// MemStats is one query's execution-arena accounting.
type MemStats struct {
	// Acquired is the total bytes of transient buffers the query
	// leased; Reused is the portion served by recycled buffers.
	Acquired, Reused int64
	// HighWater is the peak leased bytes held at any one time — the
	// query's transient working-set size, the quantity a memory budget
	// or spill tier reasons about.
	HighWater int64
}

// Result is a completed project-join. Columns appear in result order:
// first the larger side's projections, then the smaller side's, named
// "<relation>.<column>".
type Result struct {
	N      int
	Names  []string
	Cols   [][]int32
	Timing Timing
	Plan   string
	// Workers records the engine that executed the run: 0 = the
	// paper's serial mode, n >= 1 = the morsel-driven executor with n
	// workers.
	Workers int
	// Compressed records the planner's representation decision: true
	// when the run executed over block-compressed column images.
	Compressed bool
	// Trace holds the query's recorded span events when
	// JoinQuery.Trace was set (nil otherwise); render it with
	// Trace.WriteJSON or merge several with WriteTraces.
	Trace   *Trace
	runInfo *strategy.Result
}

// Column returns the result column with the given qualified name.
func (r *Result) Column(name string) ([]int32, error) {
	for i, n := range r.Names {
		if n == name {
			return r.Cols[i], nil
		}
	}
	return nil, fmt.Errorf("radixdecluster: result has no column %q", name)
}

// Row copies row i of the result into a fresh slice.
func (r *Result) Row(i int) []int32 {
	out := make([]int32, len(r.Cols))
	for c := range r.Cols {
		out[c] = r.Cols[c][i]
	}
	return out
}

// ProjectJoin executes the query.
func ProjectJoin(q JoinQuery) (*Result, error) {
	if q.Larger == nil || q.Smaller == nil {
		return nil, fmt.Errorf("radixdecluster: both relations are required")
	}
	cfg := strategy.Config{
		Hier: q.Hier.internal(), Parallelism: q.Parallelism, Runtime: q.execRuntime(),
		Compress: strategy.CompressMode(q.Compression),
	}
	st := q.Strategy
	if st == AutoStrategy {
		st = DSMPostDecluster
	}
	// The strategy name doubles as the pprof query tag; the trace
	// label adds the relation names so Perfetto titles each query's
	// process track recognizably.
	cfg.QueryTag = st.String()
	if q.Trace {
		cfg.Trace = obs.NewTrace(fmt.Sprintf("%s %s⋈%s", st, q.Larger.Name, q.Smaller.Name))
	}
	switch st {
	case DSMPostDecluster, DSMPre:
		l, err := dsmSide(q.Larger, q.LargerKey, q.LargerProject, q.Compression)
		if err != nil {
			return nil, err
		}
		s, err := dsmSide(q.Smaller, q.SmallerKey, q.SmallerProject, q.Compression)
		if err != nil {
			return nil, err
		}
		var res *strategy.Result
		if st == DSMPre {
			res, err = strategy.DSMPre(l, s, cfg)
		} else {
			res, err = strategy.DSMPost(l, s, strategy.ProjMethod(q.LargerMethod), strategy.ProjMethod(q.SmallerMethod), cfg)
		}
		if err != nil {
			return nil, err
		}
		return buildResult(q, res, cfg.Trace)
	case NSMPreHash, NSMPrePhash, NSMPostDecluster, NSMPostJive:
		l, err := nsmSide(q.Larger, q.LargerKey, q.LargerProject, q.Compression)
		if err != nil {
			return nil, err
		}
		s, err := nsmSide(q.Smaller, q.SmallerKey, q.SmallerProject, q.Compression)
		if err != nil {
			return nil, err
		}
		var res *strategy.Result
		switch st {
		case NSMPreHash:
			res, err = strategy.NSMPre(l, s, false, cfg)
		case NSMPrePhash:
			res, err = strategy.NSMPre(l, s, true, cfg)
		case NSMPostDecluster:
			res, err = strategy.NSMPostDecluster(l, s, cfg)
		default:
			res, err = strategy.NSMPostJive(l, s, 0, cfg)
		}
		if err != nil {
			return nil, err
		}
		return buildResult(q, res, cfg.Trace)
	}
	return nil, fmt.Errorf("radixdecluster: unknown strategy %v", q.Strategy)
}

func dsmSide(r *Relation, key string, proj []string, comp Compression) (strategy.DSMSide, error) {
	keys, err := r.Column(key)
	if err != nil {
		return strategy.DSMSide{}, err
	}
	cols, err := r.columns(proj)
	if err != nil {
		return strategy.DSMSide{}, err
	}
	oids := make([]OID, len(keys))
	for i := range oids {
		oids[i] = OID(i)
	}
	side := strategy.DSMSide{OIDs: oids, Keys: keys, Cols: cols, BaseN: r.Len()}
	if comp != CompressionOff && r.compressed {
		encs, err := r.encodings()
		if err != nil {
			return strategy.DSMSide{}, err
		}
		side.KeysEnc = encs[key]
		side.ColsEnc = make([]*compress.Encoded, len(proj))
		for i, p := range proj {
			side.ColsEnc[i] = encs[p]
		}
	}
	return side, nil
}

func nsmSide(r *Relation, key string, proj []string, comp Compression) (strategy.NSMSide, error) {
	// The NSM image of the relation — record scans will read the wide
	// rows, as a row store would — is built once per Relation and
	// shared by every query (nsmImage), so concurrent queries present
	// one stable scan source to the runtime.
	names := r.ColumnNames()
	keyIdx := -1
	projIdx := make([]int, 0, len(proj))
	for i, n := range names {
		if n == key {
			keyIdx = i
		}
	}
	if keyIdx < 0 {
		return strategy.NSMSide{}, fmt.Errorf("relation %q has no column %q", r.Name, key)
	}
	for _, p := range proj {
		found := -1
		for i, n := range names {
			if n == p {
				found = i
			}
		}
		if found < 0 {
			return strategy.NSMSide{}, fmt.Errorf("relation %q has no column %q", r.Name, p)
		}
		projIdx = append(projIdx, found)
	}
	rel, err := r.nsmImage()
	if err != nil {
		return strategy.NSMSide{}, err
	}
	side := strategy.NSMSide{Rel: rel, KeyCol: keyIdx, ProjCols: projIdx}
	if comp != CompressionOff && r.compressed {
		if side.Enc, err = r.recordEncoding(); err != nil {
			return strategy.NSMSide{}, err
		}
	}
	return side, nil
}

func buildResult(q JoinQuery, res *strategy.Result, tr *obs.Trace) (*Result, error) {
	out := &Result{
		N:          res.N,
		Workers:    res.Workers,
		Compressed: res.Compressed,
		Timing: Timing{
			Scan: res.Phases.Scan, Join: res.Phases.Join, ReorderJI: res.Phases.ReorderJI,
			ProjectLarger: res.Phases.ProjectLarger, ProjectSmaller: res.Phases.ProjectSmaller,
			Decluster: res.Phases.Decluster, Queue: res.Phases.Queue, Total: res.Phases.Total,
			SharedScanHits:       res.Phases.SharedScanHits,
			Sched:                schedFromExec(res.Phases.Sched),
			CompressedCols:       res.Phases.Comp.Cols,
			CompressedBytes:      res.Phases.Comp.CompressedBytes,
			CompressedSavedBytes: res.Phases.Comp.SavedBytes,
			DecodeTime:           time.Duration(res.Phases.Comp.DecodeNanos),
			Mem: MemStats{Acquired: res.Phases.Mem.Acquired,
				Reused: res.Phases.Mem.Reused, HighWater: res.Phases.Mem.HighWater},
		},
		Plan: fmt.Sprintf("joinbits=%d largerbits=%d smallerbits=%d window=%d methods=%c/%c workers=%d",
			res.JoinBits, res.LargerBits, res.SmallerBits, res.Window,
			printable(byte(res.LargerMethod)), printable(byte(res.SmallerMethod)), res.Workers),
		runInfo: res,
	}
	if res.Compressed {
		out.Plan += " compressed=true"
	}
	for _, n := range q.LargerProject {
		out.Names = append(out.Names, q.Larger.Name+"."+n)
	}
	for _, n := range q.SmallerProject {
		out.Names = append(out.Names, q.Smaller.Name+"."+n)
	}
	switch {
	case res.LargerCols != nil || res.SmallerCols != nil:
		out.Cols = append(out.Cols, res.LargerCols...)
		out.Cols = append(out.Cols, res.SmallerCols...)
	case res.Rows != nil || res.RowWidth > 0:
		// Row-major result (pre-projection / NSM strategies):
		// decompose back into columns for the uniform public shape.
		out.Cols = make([][]int32, res.RowWidth)
		for c := 0; c < res.RowWidth; c++ {
			col := make([]int32, res.N)
			for i := 0; i < res.N; i++ {
				col[i] = res.Rows[i*res.RowWidth+c]
			}
			out.Cols[c] = col
		}
	}
	if len(out.Cols) != len(out.Names) {
		return nil, fmt.Errorf("radixdecluster: internal: %d result columns for %d names", len(out.Cols), len(out.Names))
	}
	if tr != nil {
		out.Trace = &Trace{t: tr}
	}
	return out, nil
}

func printable(b byte) byte {
	if b == 0 {
		return '-'
	}
	return b
}

// Plan describes what the planner would do for a query, with modeled
// costs from the Appendix-A model — usable without running anything.
type Plan struct {
	JoinBits     int
	LargerBits   int
	SmallerBits  int
	WindowTuples int
	// ModeledMs is the Appendix-A estimate for the DSM post-projection
	// strategy.
	ModeledMs float64
	// Parallelism is the worker count the planner would choose for
	// this query's DSM post-projection plan on this machine (1 = stay
	// serial): the modeled minimum over worker counts up to
	// runtime.GOMAXPROCS, weighing linear work division against the
	// shrinking per-core cache share and the memory-bandwidth ceiling
	// (costmodel.ChooseParallelism).
	Parallelism int
	// ScalabilityLimit is the largest relation Radix-Decluster handles
	// efficiently on this hierarchy (§6: C²/(32·width²)).
	ScalabilityLimit int
}

// PlanJoin runs the planner and the cost model for a query without
// executing it.
func PlanJoin(q JoinQuery) (*Plan, error) {
	if q.Larger == nil || q.Smaller == nil {
		return nil, fmt.Errorf("radixdecluster: both relations are required")
	}
	h := q.Hier.internal()
	c := h.LLC().Size
	nL, nS := q.Larger.Len(), q.Smaller.Len()
	m := costmodel.Model{H: h}
	p := &Plan{
		WindowTuples:     core.PlanWindow(h, 4),
		ScalabilityLimit: core.ScalabilityLimit(h, 4),
	}
	p.JoinBits = planJoinBits(nS, c)
	p.LargerBits = planProjBits(nL, c)
	p.SmallerBits = planProjBits(nS, c)
	if p.SmallerBits > core.MaxBitsForWindow(p.WindowTuples) {
		p.SmallerBits = core.MaxBitsForWindow(p.WindowTuples)
	}
	nOut := max(nL, nS) // hit rate unknown: assume 1
	pi := max(len(q.LargerProject), len(q.SmallerProject))
	p.ModeledMs = m.Millis(costmodel.DSMPostDecluster(m, nOut, max(nL, nS), 4,
		max(p.LargerBits, 1), max(pi, 1), p.WindowTuples))
	pcfg := strategy.Config{Hier: h}
	if q.Runtime != nil {
		// Plan against the query's runtime: its pool size caps the
		// worker search and its active-query count shrinks the modeled
		// cache and bandwidth shares. (The process default is not
		// consulted here — planning alone must not spin it up.)
		pcfg.Runtime = q.Runtime.rt
	}
	p.Parallelism = strategy.PlanParallelism(nOut, max(nL, nS), pi, pcfg)
	return p, nil
}

func planJoinBits(smallerTuples, cacheBytes int) int {
	return join.PlanBits(smallerTuples, 4, cacheBytes)
}

func planProjBits(baseN, cacheBytes int) int {
	return radix.OptimalBits(baseN, 4, cacheBytes)
}
