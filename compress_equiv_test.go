package radixdecluster

import (
	"fmt"
	"reflect"
	"testing"

	"radixdecluster/internal/workload"
)

// Compressed/raw byte-equivalence matrix: every strategy must return
// results byte-identical to its raw run whether it executes serially,
// on a per-query pool, or on a shared runtime, and whether the
// compression mode forces the encoded representation or leaves the
// decision to the cost model. Strict equality, not set comparison —
// compressed operators reproduce the raw arrangement exactly.

// compressedRelations is workloadRelations with block-compressed
// column images enabled on both relations.
func compressedRelations(t *testing.T, p workload.Params, pi int) (*Relation, *Relation) {
	t.Helper()
	pr, err := workload.GenPair(p)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, wr *workload.Relation) *Relation {
		cols := []Column{{Name: "key", Values: wr.Key()}}
		for j := 1; j <= pi; j++ {
			cols = append(cols, Column{Name: fmt.Sprintf("a%d", j), Values: wr.PayloadCol(j)})
		}
		rel, err := NewRelationOpts(name, cols, WithCompression())
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	return mk("larger", pr.Larger), mk("smaller", pr.Smaller)
}

func requireSameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", tag, got.N, want.N)
	}
	if !reflect.DeepEqual(got.Names, want.Names) {
		t.Fatalf("%s: names %v != %v", tag, got.Names, want.Names)
	}
	if !reflect.DeepEqual(got.Cols, want.Cols) {
		t.Fatalf("%s: result columns differ from raw serial run", tag)
	}
}

func TestCompressedEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence matrix needs full-size relations")
	}
	const pi = 2
	larger, smaller := compressedRelations(t,
		workload.Params{N: equivalenceN, Omega: pi + 1, HitRate: 1, SelLarger: 1, SelSmaller: 1, Seed: 46}, pi)
	rt := NewRuntime(RuntimeConfig{Workers: 4, MaxConcurrentQueries: 4, ShareScans: true})
	defer rt.Close()
	engines := []struct {
		name string
		par  int
		rt   *Runtime
	}{
		{"serial", 0, nil},
		{"parallel", 4, nil},
		{"runtime", 2, rt},
	}
	for _, st := range []Strategy{DSMPostDecluster, DSMPre, NSMPreHash, NSMPrePhash, NSMPostDecluster, NSMPostJive} {
		q := JoinQuery{
			Larger: larger, Smaller: smaller,
			LargerKey: "key", SmallerKey: "key",
			LargerProject: projNames(pi), SmallerProject: projNames(pi),
			Strategy: st,
		}
		want, err := ProjectJoin(q)
		if err != nil {
			t.Fatalf("%v: raw serial: %v", st, err)
		}
		for _, eng := range engines {
			for _, mode := range []Compression{CompressionOn, CompressionAuto} {
				cq := q
				cq.Parallelism = eng.par
				cq.Runtime = eng.rt
				cq.Compression = mode
				got, err := ProjectJoin(cq)
				if err != nil {
					t.Fatalf("%v/%s/%v: %v", st, eng.name, mode, err)
				}
				requireSameResult(t, fmt.Sprintf("%v/%s/%v", st, eng.name, mode), got, want)
				if mode == CompressionOn && !got.Compressed {
					t.Fatalf("%v/%s: CompressionOn run not marked compressed", st, eng.name)
				}
				if got.Compressed && got.Timing.CompressedCols == 0 {
					t.Fatalf("%v/%s/%v: compressed run consumed no compressed columns", st, eng.name, mode)
				}
			}
		}
	}
}

// TestCompressedPlanAndCounters pins the observable surface: the Plan
// string advertises the representation, the Timing counters report the
// decode work, and relations without WithCompression always run raw
// even when the query asks for compression.
func TestCompressedPlanAndCounters(t *testing.T) {
	const pi = 1
	larger, smaller := compressedRelations(t,
		workload.Params{N: 4096, Omega: pi + 1, HitRate: 1, SelLarger: 1, SelSmaller: 1, Seed: 47}, pi)
	q := JoinQuery{
		Larger: larger, Smaller: smaller,
		LargerKey: "key", SmallerKey: "key",
		LargerProject: projNames(pi), SmallerProject: projNames(pi),
		Strategy:    DSMPostDecluster,
		Compression: CompressionOn,
	}
	res, err := ProjectJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compressed {
		t.Fatal("CompressionOn over WithCompression relations did not run compressed")
	}
	if res.Timing.CompressedCols == 0 || res.Timing.CompressedBytes <= 0 || res.Timing.CompressedSavedBytes <= 0 {
		t.Fatalf("compressed counters not populated: %+v", res.Timing)
	}
	if want := " compressed=true"; len(res.Plan) < len(want) || res.Plan[len(res.Plan)-len(want):] != want {
		t.Fatalf("Plan %q does not advertise compressed execution", res.Plan)
	}

	// Plain relations: the same query must silently run raw.
	rawL, rawS := workloadRelations(t,
		workload.Params{N: 4096, Omega: pi + 1, HitRate: 1, SelLarger: 1, SelSmaller: 1, Seed: 47}, pi)
	q.Larger, q.Smaller = rawL, rawS
	res, err = ProjectJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed || res.Timing.CompressedCols != 0 {
		t.Fatalf("plain relations ran compressed: %+v", res.Timing)
	}
}
