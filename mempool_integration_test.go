package radixdecluster

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"radixdecluster/internal/workload"
)

// memPoolQueries builds the mixed-strategy query set the arena tests
// hammer with: every strategy over a shared workload shape, all above
// MinParallelN so the parallel operators (and their leased buffers)
// genuinely run.
func memPoolQueries(t *testing.T) []JoinQuery {
	t.Helper()
	const pi = 2
	larger, smaller := workloadRelations(t,
		workload.Params{N: 32 << 10, Omega: pi + 1, HitRate: 1, SelLarger: 1, SelSmaller: 1, Seed: 77}, pi)
	var queries []JoinQuery
	for _, st := range []Strategy{DSMPostDecluster, DSMPre, NSMPreHash, NSMPrePhash, NSMPostDecluster, NSMPostJive} {
		queries = append(queries, JoinQuery{
			Larger: larger, Smaller: smaller,
			LargerKey: "key", SmallerKey: "key",
			LargerProject: projNames(pi), SmallerProject: projNames(pi),
			Strategy: st,
		})
	}
	return queries
}

// TestMemPoolOnOffByteIdentical is the arena's correctness contract:
// a concurrent mixed-strategy hammer must produce exactly the serial
// bytes both with buffer recycling on (the default) and through the
// MemPoolOff escape hatch — the arena changes where transient backing
// memory comes from, never what the operators write into it. It also
// pins the accounting: pooled runs report leased bytes, pool-off runs
// report none, and no lease survives its query (leak check).
func TestMemPoolOnOffByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test needs full-size relations")
	}
	queries := memPoolQueries(t)

	want := make([]*Result, len(queries))
	for i, q := range queries {
		q.Parallelism = 0
		res, err := ProjectJoin(q)
		if err != nil {
			t.Fatalf("%s serial: %v", queries[i].Strategy, err)
		}
		want[i] = res
	}

	for _, mode := range []struct {
		name string
		cfg  RuntimeConfig
	}{
		{"pool=on", RuntimeConfig{}},
		{"pool=off", RuntimeConfig{MemPoolOff: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			rt := NewRuntime(mode.cfg)
			defer rt.Close()
			if rt.MemPooled() == mode.cfg.MemPoolOff {
				t.Fatalf("MemPooled()=%v with MemPoolOff=%v", rt.MemPooled(), mode.cfg.MemPoolOff)
			}

			// Two rounds: the second runs against a warm arena, where
			// recycled buffers (not correctness-neutral-by-luck fresh
			// zeroed memory) back the operators.
			for round := 0; round < 2; round++ {
				var wg sync.WaitGroup
				errs := make([]error, len(queries))
				got := make([]*Result, len(queries))
				for i, q := range queries {
					wg.Add(1)
					go func(i int, q JoinQuery) {
						defer wg.Done()
						q.Parallelism = 4
						q.Runtime = rt
						res, err := ProjectJoin(q)
						if err != nil {
							errs[i] = fmt.Errorf("%s: %w", q.Strategy, err)
							return
						}
						got[i] = res
					}(i, q)
				}
				wg.Wait()
				for i, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got[i].Cols, want[i].Cols) {
						t.Fatalf("round %d %s: result differs from serial bytes", round, queries[i].Strategy)
					}
					if mode.cfg.MemPoolOff && got[i].Timing.Mem.Acquired != 0 {
						t.Fatalf("%s: pool-off run leased %d bytes", queries[i].Strategy, got[i].Timing.Mem.Acquired)
					}
					if !mode.cfg.MemPoolOff {
						if got[i].Timing.Mem.Acquired <= 0 {
							t.Fatalf("%s: pooled run leased no bytes", queries[i].Strategy)
						}
						if hw, acq := got[i].Timing.Mem.HighWater, got[i].Timing.Mem.Acquired; hw <= 0 || hw > acq {
							t.Fatalf("%s: high-water %d outside (0, acquired=%d]", queries[i].Strategy, hw, acq)
						}
					}
				}
			}

			s := rt.MemPoolStats()
			if mode.cfg.MemPoolOff {
				if s != (MemPoolStats{}) {
					t.Fatalf("pool-off runtime reported arena stats %v", s)
				}
				return
			}
			if s.Leases != 0 {
				t.Fatalf("%d leases still open after all queries finished", s.Leases)
			}
			if s.HitRate() <= 0 {
				t.Fatalf("no recycled buffers after a warm round (hits=%d misses=%d)", s.Hits, s.Misses)
			}
		})
	}
}

// TestWarmQueryAllocAccounting pins the zero-alloc-steady-state claim
// from the accounting side: once the arena is warm, a repeated query
// reports (almost) all of its leased bytes served by recycled buffers.
// An allocs-per-op ceiling for the same shape lives in
// BenchmarkConcurrentProjectJoin's CI gate (cmd/benchjson), which
// measures it on a quiet process where testing.AllocsPerRun's
// assumptions hold.
func TestWarmQueryAllocAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full-size relations")
	}
	queries := memPoolQueries(t)
	q := queries[0]
	rt := NewRuntime(RuntimeConfig{})
	defer rt.Close()
	run := func() *Result {
		qq := q
		qq.Parallelism = 4
		qq.Runtime = rt
		res, err := ProjectJoin(qq)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	run() // warm the arena
	res := run()
	if res.Timing.Mem.Acquired <= 0 {
		t.Fatal("warm run leased no bytes")
	}
	if reused := float64(res.Timing.Mem.Reused) / float64(res.Timing.Mem.Acquired); reused < 0.9 {
		t.Fatalf("warm run reused only %.0f%% of its leased bytes (acq=%d reuse=%d)",
			reused*100, res.Timing.Mem.Acquired, res.Timing.Mem.Reused)
	}

	// Absolute ceiling on a warm query's allocations. The pooled
	// steady state measures in the low hundreds (result columns, which
	// stay GC-owned by contract, plus goroutine scheduling noise); the
	// ceiling sits far above that but far below the tens of thousands
	// an unpooled run costs, so a regression that stops recycling the
	// big transients trips it immediately.
	const allocCeiling = 2000
	if allocs := testing.AllocsPerRun(3, func() { run() }); allocs > allocCeiling {
		t.Fatalf("warm query allocated %.0f objects per run, ceiling %d", allocs, allocCeiling)
	}
}
